#include "src/proc/processor.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace grouting {
namespace {

double ElapsedUs(std::chrono::steady_clock::time_point from,
                 std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

}  // namespace

size_t ResolveMigratedMisses(StorageTier* storage, std::span<const NodeId> keys,
                             std::vector<AdjacencyPtr>* values) {
  GROUTING_CHECK(keys.size() == values->size());
  const PartitionMap* map = storage->partition_map();
  if (map == nullptr && !storage->mutations_enabled()) {
    return 0;
  }
  size_t resolved = 0;
  for (size_t k = 0; k < keys.size(); ++k) {
    if ((*values)[k] != nullptr) {
      continue;
    }
    // The re-fetch can itself race the NEXT migration (a plain read is not
    // covered by the drain accounting), so retry until the owner STAMP is
    // stable around a null read. The stamp's version half catches even a
    // partition that moved away and back (ABA) during the read; only a
    // null under an unchanged stamp is a genuine miss — anything else
    // means the key moved mid-read and the then-current owner has it.
    // With mutations on, the mutation version must be stable too: a node
    // materialised (kAddVertex) during a migration or replica promotion
    // can land its blob under an unchanged owner stamp, and a stamp-only
    // check would wrongly conclude "stable null" for a key that now
    // exists. The read is the stats-free PeekCurrent: the raced batch
    // already counted this key as workload traffic once.
    for (;;) {
      const uint64_t stamp = map != nullptr ? map->OwnerStampOf(keys[k]) : 0;
      const uint64_t version = storage->NodeVersion(keys[k]);
      AdjacencyPtr entry = storage->PeekCurrent(keys[k]);
      if (entry != nullptr) {
        (*values)[k] = std::move(entry);
        ++resolved;
        break;
      }
      if ((map == nullptr || map->OwnerStampOf(keys[k]) == stamp) &&
          storage->NodeVersion(keys[k]) == version) {
        break;  // stable null: genuine miss (a truly withheld vertex)
      }
    }
  }
  return resolved;
}

void CachedStorageSource::CompleteOldest(std::vector<Inflight>* inflight,
                                         std::span<const NodeId> nodes,
                                         std::vector<AdjacencyPtr>* result,
                                         FetchTrace::Level* level, double* blocked_us) {
  Inflight batch = std::move(inflight->front());
  inflight->erase(inflight->begin());

  const bool traced = tracer_ != nullptr && tracer_->active();
  const std::vector<AdjacencyPtr>* values = nullptr;
  if (executor_ != nullptr) {
    const auto wait_start = std::chrono::steady_clock::now();
    values = &batch.handle->Wait();
    const auto wait_end = std::chrono::steady_clock::now();
    *blocked_us += ElapsedUs(wait_start, wait_end);
    if (traced) {
      // The batch span covers submit -> reply landed; the stall span only
      // the part where this thread actually sat in Wait().
      tracer_->Span(TraceEventType::kBatch, batch.issue_ts_us,
                    tracer_->AtUs(wait_end), trace_.levels,
                    batch.handle->server_id(), batch.handle->keys().size());
      tracer_->Span(TraceEventType::kStall, tracer_->AtUs(wait_start),
                    tracer_->AtUs(wait_end), trace_.levels,
                    batch.handle->server_id());
    }
  } else {
    // Inline execution: the batch was serviced synchronously at issue time
    // and its batch/stall spans were recorded there (see FetchBatch).
    values = &batch.handle->Wait();
  }

  // Under repartitioning a batch can race a partition migration: the keys
  // moved between the ServerOf lookup that formed the batch and its
  // service. Null slots are re-resolved through the tier's current map, so
  // the values are still delivered exactly once. Mutations open the same
  // hole without any migration — a kAddVertex can land between batch
  // formation and service — so the heal also runs when mutations are on.
  // The copy is paid only when a batch actually came back with a hole — on
  // the common all-present path (and always when both features are off)
  // this is a read-only scan.
  std::vector<AdjacencyPtr> patched;
  if ((storage_->repartitioning_enabled() || storage_->mutations_enabled()) &&
      std::find(values->begin(), values->end(), nullptr) != values->end()) {
    patched = *values;
    ResolveMigratedMisses(storage_, batch.handle->keys(), &patched);
    values = &patched;
  }

  FetchTrace::Batch stats;
  stats.server = batch.handle->server_id();
  stats.level = trace_.levels;
  for (size_t k = 0; k < values->size(); ++k) {
    const AdjacencyPtr& entry = (*values)[k];
    if (entry == nullptr) {
      continue;
    }
    const uint64_t edges = entry->out.size() + entry->in.size();
    stats.values += 1;
    stats.bytes += entry->WireBytes();  // what actually crossed the network
    stats.edges += edges;
    trace_.bytes_fetched += entry->WireBytes();
    ++trace_.visited;
    ++level->fetched;
    level->fetched_edges += edges;
    const size_t pos = batch.positions[k];
    if (cache_ != nullptr) {
      // Install under the version snapshot taken BEFORE the batch was
      // issued (batch.versions, 0 with mutations off): a blob mutated
      // while the batch was in flight installs with a stale snapshot and
      // the next probe refetches it — never the other way around.
      const uint64_t version = batch.versions.empty() ? 0 : batch.versions[k];
      if (cache_compressed_) {
        GROUTING_CHECK_MSG(entry->wire != nullptr,
                           "cache_compressed requires the storage tier's "
                           "retain-wire mode");
        cache_->Put(Key(nodes[pos]), CachedAdjacency{nullptr, entry->wire, version},
                    entry->wire->size());
      } else {
        cache_->Put(Key(nodes[pos]), CachedAdjacency{entry, nullptr, version},
                    entry->SerializedBytes());
      }
    }
    (*result)[pos] = entry;
  }
  trace_.batches.push_back(stats);
}

std::vector<AdjacencyPtr> CachedStorageSource::FetchBatch(std::span<const NodeId> nodes) {
  std::vector<AdjacencyPtr> result(nodes.size());
  trace_.level_stats.emplace_back();
  FetchTrace::Level& level = trace_.level_stats.back();
  const bool traced = tracer_ != nullptr && tracer_->active();
  const double level_start_us = traced ? tracer_->NowUs() : 0.0;

  // Probe phase: serve from cache. Functionally this runs before the issue
  // phase for EVERY window (cache state stays window-invariant); it stands
  // in for the cheap membership pass a real processor uses to form its miss
  // batches. The expensive per-hit side (recency update, value
  // materialisation, partial-result merge) is what the sim's replay charges
  // as overlapping the outstanding batches; on the threaded engine the
  // measured overlap covers issue + completion merging, not this pass.
  std::vector<size_t> miss_positions;
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (cache_ != nullptr) {
      ++trace_.cache_lookups;
      ++level.lookups;
      // A hit only counts if its version snapshot is still current: a slot
      // installed before a mutation of this key re-validates against the
      // tier's live NodeVersion and, when stale, falls through to the miss
      // path (the refetch overwrites the slot with the new blob). With
      // mutations off both sides are 0 and the comparison is a no-op.
      if (auto hit = cache_->Get(Key(nodes[i]));
          hit.has_value() &&
          hit->version == storage_->NodeVersion(Key(nodes[i]))) {
        ++trace_.cache_hits;
        ++level.hits;
        ++trace_.visited;
        AdjacencyPtr entry;
        if (hit->encoded != nullptr) {
          // Compressed slot: pay the decode, for real, on every hit. The
          // wall time lands in the trace so the threaded runtime reports
          // it; the sim charges its virtual equivalent during replay.
          const auto decode_start = std::chrono::steady_clock::now();
          entry = DecodeAdjacency(*hit->encoded);
          const auto decode_end = std::chrono::steady_clock::now();
          trace_.decompress_us += ElapsedUs(decode_start, decode_end);
          if (tracer_ != nullptr && tracer_->active()) {
            tracer_->Span(TraceEventType::kDecode, tracer_->AtUs(decode_start),
                          tracer_->AtUs(decode_end), trace_.levels);
          }
          GROUTING_CHECK(entry != nullptr);
        } else {
          entry = hit->decoded;
        }
        level.hit_edges += entry->out.size() + entry->in.size();
        result[i] = std::move(entry);
        continue;
      }
      ++trace_.cache_misses;
      ++level.misses;
    } else {
      ++trace_.cache_misses;  // every access is a storage fetch
      ++level.misses;
    }
    miss_positions.push_back(i);
  }

  // Issue / complete phases: group misses by owning storage server into
  // multiget batches and keep at most `window_` of them outstanding.
  // Completions install values in issue order (ascending server id), so
  // stats, trace and cache state never depend on the window or on when the
  // executor actually serviced a handle. Each miss's owner is resolved
  // EXACTLY ONCE into a snapshot before sorting: under repartitioning the
  // map can flip concurrently, and a live-ServerOf comparator would be
  // inconsistent mid-sort (undefined behaviour). A batch formed from a
  // snapshot that lost the flip race is healed in CompleteOldest.
  if (!miss_positions.empty()) {
    std::vector<std::pair<uint32_t, size_t>> misses;  // (server snapshot, pos)
    misses.reserve(miss_positions.size());
    for (const size_t pos : miss_positions) {
      // ReadServerOf: the owner, or under replication a p2c-chosen replica
      // — so one scorching partition's misses fan across its replica set.
      // Keys go out tenant-offset: placement below only ever sees global
      // keys, while positions keep indexing the tenant-local result slots.
      misses.emplace_back(storage_->ReadServerOf(Key(nodes[pos])), pos);
    }
    std::sort(misses.begin(), misses.end());

    const bool timed = executor_ != nullptr;
    const auto issue_start = std::chrono::steady_clock::now();
    double blocked_us = 0.0;
    uint32_t peak = 0;
    std::vector<Inflight> inflight;

    size_t i = 0;
    while (i < misses.size()) {
      const uint32_t server = misses[i].first;
      Inflight batch;
      std::vector<NodeId> keys;
      const bool versioned = storage_->mutations_enabled();
      while (i < misses.size() && misses[i].first == server) {
        const size_t pos = misses[i].second;
        keys.push_back(Key(nodes[pos]));
        batch.positions.push_back(pos);
        if (versioned) {
          // Snapshot BEFORE the multiget runs: the installed cache slot
          // may under-claim its version (spurious refetch later) but can
          // never claim a version newer than the blob it holds.
          batch.versions.push_back(storage_->NodeVersion(Key(nodes[pos])));
        }
        ++i;
      }
      if (inflight.size() >= window_) {
        CompleteOldest(&inflight, nodes, &result, &level, &blocked_us);
      }
      const size_t batch_keys = keys.size();
      batch.handle = storage_->StartMultiGet(server, std::move(keys));
      if (executor_ != nullptr) {
        if (traced) {
          batch.issue_ts_us = tracer_->NowUs();
        }
        executor_->Submit(batch.handle);
      } else if (traced) {
        // Synchronous service on this thread: the whole multiget IS the
        // stall — batch and stall spans coincide.
        const double exec_start = tracer_->NowUs();
        batch.handle->Execute();
        const double exec_end = tracer_->NowUs();
        batch.issue_ts_us = exec_start;
        tracer_->Span(TraceEventType::kBatch, exec_start, exec_end, trace_.levels,
                      server, batch_keys);
        tracer_->Span(TraceEventType::kStall, exec_start, exec_end, trace_.levels,
                      server);
      } else {
        batch.handle->Execute();
      }
      inflight.push_back(std::move(batch));
      peak = std::max(peak, static_cast<uint32_t>(inflight.size()));
    }
    while (!inflight.empty()) {
      CompleteOldest(&inflight, nodes, &result, &level, &blocked_us);
    }

    if (timed) {
      const double span_us = ElapsedUs(issue_start, std::chrono::steady_clock::now());
      trace_.async_overlap_us += std::max(0.0, span_us - blocked_us);
      trace_.max_batches_inflight = std::max(trace_.max_batches_inflight, peak);
    }
  }
  if (traced) {
    tracer_->Span(TraceEventType::kLevel, level_start_us, tracer_->NowUs(),
                  trace_.levels, 0, nodes.size());
  }
  ++trace_.levels;
  return result;
}

QueryProcessor::QueryProcessor(uint32_t id, StorageTier* storage,
                               const ProcessorConfig& config)
    : id_(id) {
  if (config.use_cache) {
    cache_ = std::make_unique<NodeCache<CachedAdjacency>>(config.cache_bytes,
                                                          config.cache_policy);
  }
  source_ = std::make_unique<CachedStorageSource>(
      storage, cache_.get(), config.max_inflight_batches,
      config.cache_compressed, config.tenant_stride);
}

QueryResult QueryProcessor::Execute(const Query& q) {
  source_->set_tenant(q.tenant);
  source_->ResetTrace();
  QueryResult result = ExecuteQuery(q, *source_);
  const FetchTrace& trace = source_->trace();
  ++stats_.queries_executed;
  stats_.cache_hits += trace.cache_hits;
  stats_.cache_misses += trace.cache_misses;
  stats_.nodes_visited += trace.visited;
  stats_.bytes_fetched += trace.bytes_fetched;
  stats_.storage_batches += trace.batches.size();
  stats_.batches_inflight_peak =
      std::max(stats_.batches_inflight_peak, trace.max_batches_inflight);
  stats_.fetch_overlap_us += trace.async_overlap_us;
  stats_.decompress_us += trace.decompress_us;
  return result;
}

void QueryProcessor::ResetStats() {
  stats_ = ProcessorStats{};
  if (cache_ != nullptr) {
    cache_->ResetStats();
  }
}

}  // namespace grouting
