// Wire formats of a node's adjacency entry, the unit of transfer between
// the storage tier and query processors (paper Figure 3: key = node id,
// value = labeled out- and in-neighbour arrays). Two encodings share one
// auto-detecting decoder, so old blobs always decode:
//
// v1 / raw (little-endian, fixed width):
//   [0..4)   node id (sanity check)
//   [4..6)   node label
//   [6..8)   reserved (always 0 — the v1 structural signature)
//   [8..12)  out-edge count
//   [12..16) in-edge count
//   then     out edges, in edges — 6 bytes each (4-byte dst + 2-byte label)
// Total = 16 + 6 * (out + in), matching Graph::AdjacencyBytes().
//
// v2 / delta_varint (compressed):
//   [0]      magic 0xC2
//   [1]      version 0x02
//   then     LEB128 varints: node id, node label, out count, in count;
//            out dsts as zigzag-encoded deltas (sorted CSR neighbours make
//            the deltas small — a few bits each); out labels run-length
//            encoded as (run length, label) varint pairs; then the in side
//            the same way. Zigzag (not plain) deltas keep round-trip
//            fidelity for unsorted dynamic-update entries too.
//
// Decode detection: the v1 structural check runs FIRST (exact size match +
// reserved bytes zero) — a v1 blob whose node id happens to start 0xC2 0x02
// still decodes as v1. The v2 encoder defensively appends one 0x00 pad byte
// in the (astronomically rare) case its output would also pass the v1
// structural check; the v2 decoder tolerates exactly one trailing zero pad.

#ifndef GROUTING_SRC_STORAGE_ADJACENCY_H_
#define GROUTING_SRC_STORAGE_ADJACENCY_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/graph/graph.h"

namespace grouting {

// Which wire format EncodeAdjacency emits. Decoding auto-detects, so a
// store may hold a mix (e.g. after a dynamic update under a different
// setting than the bulk load).
enum class AdjacencyEncoding {
  kRaw,          // v1 fixed-width layout
  kDeltaVarint,  // v2 delta + LEB128 varint layout
};

std::string AdjacencyEncodingName(AdjacencyEncoding encoding);

// Decoded adjacency entry held in processor caches.
struct AdjacencyEntry {
  NodeId node = kInvalidNode;
  Label node_label = kNoLabel;
  std::vector<Edge> out;
  std::vector<Edge> in;
  // Wire size of the blob this entry was decoded from (== SerializedBytes()
  // for v1 blobs, typically much smaller for v2). 0 when the entry was built
  // directly rather than decoded — WireBytes() falls back to the v1 size.
  size_t wire_bytes = 0;
  // The encoded blob itself, retained only when the decoder is asked to
  // (StorageTier retain-wire mode): compressed processor caches admit these
  // bytes instead of the decoded entry.
  std::shared_ptr<const std::vector<uint8_t>> wire;

  // Logical (v1) size: the decoded in-memory footprint every byte budget in
  // the paper's experiments is expressed in.
  size_t SerializedBytes() const { return 16 + 6 * (out.size() + in.size()); }
  size_t WireBytes() const { return wire_bytes == 0 ? SerializedBytes() : wire_bytes; }
};

using AdjacencyPtr = std::shared_ptr<const AdjacencyEntry>;

// Serialises node u's entry straight from the graph CSR.
std::vector<uint8_t> EncodeAdjacency(const Graph& g, NodeId u,
                                     AdjacencyEncoding encoding = AdjacencyEncoding::kRaw);

// Serialises an already-decoded entry (used for dynamic updates).
std::vector<uint8_t> EncodeAdjacency(const AdjacencyEntry& entry,
                                     AdjacencyEncoding encoding = AdjacencyEncoding::kRaw);

// Parses a wire blob of either version (auto-detected). Returns nullptr on
// malformed input — never crashes, whatever the bytes. With `retain_wire`
// the entry additionally keeps a copy of the blob (see AdjacencyEntry::wire).
AdjacencyPtr DecodeAdjacency(std::span<const uint8_t> bytes, bool retain_wire = false);

}  // namespace grouting

#endif  // GROUTING_SRC_STORAGE_ADJACENCY_H_
