// Wire format of a node's adjacency entry, the unit of transfer between the
// storage tier and query processors (paper Figure 3: key = node id, value =
// labeled out- and in-neighbour arrays).
//
// Layout (little-endian):
//   [0..4)   node id (sanity check)
//   [4..6)   node label
//   [6..8)   reserved
//   [8..12)  out-edge count
//   [12..16) in-edge count
//   then     out edges, in edges — 6 bytes each (4-byte dst + 2-byte label)
// Total = 16 + 6 * (out + in), matching Graph::AdjacencyBytes().

#ifndef GROUTING_SRC_STORAGE_ADJACENCY_H_
#define GROUTING_SRC_STORAGE_ADJACENCY_H_

#include <memory>
#include <span>
#include <vector>

#include "src/graph/graph.h"

namespace grouting {

// Decoded adjacency entry held in processor caches.
struct AdjacencyEntry {
  NodeId node = kInvalidNode;
  Label node_label = kNoLabel;
  std::vector<Edge> out;
  std::vector<Edge> in;

  size_t SerializedBytes() const { return 16 + 6 * (out.size() + in.size()); }
};

using AdjacencyPtr = std::shared_ptr<const AdjacencyEntry>;

// Serialises node u's entry straight from the graph CSR.
std::vector<uint8_t> EncodeAdjacency(const Graph& g, NodeId u);

// Serialises an already-decoded entry (used for dynamic updates).
std::vector<uint8_t> EncodeAdjacency(const AdjacencyEntry& entry);

// Parses a wire blob. Returns nullptr on malformed input.
AdjacencyPtr DecodeAdjacency(std::span<const uint8_t> bytes);

}  // namespace grouting

#endif  // GROUTING_SRC_STORAGE_ADJACENCY_H_
