#include "src/storage/kv_store.h"

#include <cstring>

#include "src/util/check.h"

namespace grouting {

LogStructuredStore::LogStructuredStore(size_t segment_bytes)
    : segment_bytes_(segment_bytes) {
  GROUTING_CHECK(segment_bytes_ >= 64);
}

LogStructuredStore::Location LogStructuredStore::Append(std::span<const uint8_t> value) {
  GROUTING_CHECK_MSG(value.size() <= segment_bytes_, "value larger than a segment");
  if (segments_.empty() ||
      segments_.back()->data.size() + value.size() > segment_bytes_) {
    auto seg = std::make_unique<Segment>();
    seg->data.reserve(segment_bytes_);
    segments_.push_back(std::move(seg));
  }
  Segment& seg = *segments_.back();
  const Location loc{static_cast<uint32_t>(segments_.size() - 1),
                     static_cast<uint32_t>(seg.data.size()),
                     static_cast<uint32_t>(value.size())};
  seg.data.insert(seg.data.end(), value.begin(), value.end());
  log_bytes_ += value.size();
  return loc;
}

void LogStructuredStore::Put(uint64_t key, std::span<const uint8_t> value) {
  ++stats_.puts;
  auto it = index_.find(key);
  if (it != index_.end()) {
    live_bytes_ -= it->second.length;  // old record becomes dead space
  }
  const Location loc = Append(value);
  index_[key] = loc;
  live_bytes_ += value.size();
}

std::optional<std::span<const uint8_t>> LogStructuredStore::Get(uint64_t key) {
  ++stats_.gets;
  auto it = index_.find(key);
  if (it == index_.end()) {
    return std::nullopt;
  }
  const Location& loc = it->second;
  const Segment& seg = *segments_[loc.segment];
  return std::span<const uint8_t>(seg.data.data() + loc.offset, loc.length);
}

std::vector<std::optional<std::span<const uint8_t>>> LogStructuredStore::MultiGet(
    std::span<const uint64_t> keys) {
  std::vector<std::optional<std::span<const uint8_t>>> result;
  result.reserve(keys.size());
  for (uint64_t key : keys) {
    result.push_back(Get(key));
  }
  return result;
}

bool LogStructuredStore::Delete(uint64_t key) {
  ++stats_.deletes;
  auto it = index_.find(key);
  if (it == index_.end()) {
    return false;
  }
  live_bytes_ -= it->second.length;
  index_.erase(it);
  return true;
}

double LogStructuredStore::Utilization() const {
  return log_bytes_ == 0
             ? 1.0
             : static_cast<double>(live_bytes_) / static_cast<double>(log_bytes_);
}

void LogStructuredStore::Compact() {
  ++stats_.compactions;
  std::vector<std::unique_ptr<Segment>> old_segments = std::move(segments_);
  segments_.clear();
  log_bytes_ = 0;
  for (auto& [key, loc] : index_) {
    const Segment& seg = *old_segments[loc.segment];
    loc = Append({seg.data.data() + loc.offset, loc.length});
  }
}

}  // namespace grouting
