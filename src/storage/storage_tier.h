// The decoupled storage tier: M storage servers, each a log-structured KV
// store, holding the graph horizontally partitioned by MurmurHash3 over node
// ids (RAMCloud's default placement, "inexpensive hash partitioning") or by
// an explicit assignment for partitioning ablations.

#ifndef GROUTING_SRC_STORAGE_STORAGE_TIER_H_
#define GROUTING_SRC_STORAGE_STORAGE_TIER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/graph/graph.h"
#include "src/partition/partitioner.h"
#include "src/storage/adjacency.h"
#include "src/storage/kv_store.h"

namespace grouting {

struct StorageServerStats {
  uint64_t get_requests = 0;   // individual key lookups
  uint64_t batch_requests = 0;  // multiget batches (the DES queueing unit)
  uint64_t values_served = 0;
  uint64_t bytes_served = 0;
  uint64_t misses = 0;  // keys not found
};

// One storage server. Requests are serialised by an internal mutex — a real
// server services its request queue sequentially, and this is exactly what
// lets the threaded runtime share the tier between processor threads.
class StorageServer {
 public:
  explicit StorageServer(uint32_t id) : id_(id) {}

  uint32_t id() const { return id_; }

  void Load(NodeId node, std::span<const uint8_t> value) {
    std::lock_guard<std::mutex> lock(mu_);
    store_.Put(node, value);
  }

  // Fetches and decodes one adjacency entry; nullptr if absent.
  AdjacencyPtr Get(NodeId node);

  void Delete(NodeId node) {
    std::lock_guard<std::mutex> lock(mu_);
    store_.Delete(node);
  }

  const LogStructuredStore& store() const { return store_; }
  const StorageServerStats& stats() const { return stats_; }
  void ResetStats() {
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = StorageServerStats{};
  }
  // Called once per multiget batch for queueing/statistics purposes.
  void NoteBatch() {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.batch_requests;
  }

 private:
  uint32_t id_;
  mutable std::mutex mu_;
  LogStructuredStore store_;
  StorageServerStats stats_;
};

class StorageTier {
 public:
  explicit StorageTier(size_t num_servers, uint32_t hash_seed = 0x9747b28cu);

  // Loads every node's adjacency entry, placed by MurmurHash3 (default) or
  // by an explicit node->server assignment.
  void LoadGraph(const Graph& g);
  void LoadGraph(const Graph& g, const PartitionAssignment& placement);

  size_t num_servers() const { return servers_.size(); }
  uint32_t ServerOf(NodeId node) const;

  // Fetch through the tier (resolves the owning server).
  AdjacencyPtr Get(NodeId node);

  StorageServer& server(size_t i) { return *servers_[i]; }
  const StorageServer& server(size_t i) const { return *servers_[i]; }

  uint64_t TotalLiveBytes() const;
  uint64_t TotalValues() const;

 private:
  std::vector<std::unique_ptr<StorageServer>> servers_;
  HashPartitioner hasher_;
  // Empty when hash placement is in effect.
  PartitionAssignment explicit_placement_;
};

}  // namespace grouting

#endif  // GROUTING_SRC_STORAGE_STORAGE_TIER_H_
