// The decoupled storage tier: M storage servers, each a log-structured KV
// store, holding the graph horizontally partitioned by MurmurHash3 over node
// ids (RAMCloud's default placement, "inexpensive hash partitioning") or by
// an explicit assignment for partitioning ablations.

#ifndef GROUTING_SRC_STORAGE_STORAGE_TIER_H_
#define GROUTING_SRC_STORAGE_STORAGE_TIER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/graph/graph.h"
#include "src/partition/partitioner.h"
#include "src/storage/adjacency.h"
#include "src/storage/kv_store.h"

namespace grouting {

struct StorageServerStats {
  uint64_t get_requests = 0;   // individual key lookups
  uint64_t batch_requests = 0;  // multiget batches (the DES queueing unit)
  uint64_t values_served = 0;
  uint64_t bytes_served = 0;
  uint64_t misses = 0;  // keys not found
};

// One storage server. Requests are serialised by an internal mutex — a real
// server services its request queue sequentially, and this is exactly what
// lets the threaded runtime share the tier between processor threads.
class StorageServer {
 public:
  explicit StorageServer(uint32_t id) : id_(id) {}

  uint32_t id() const { return id_; }

  void Load(NodeId node, std::span<const uint8_t> value) {
    std::lock_guard<std::mutex> lock(mu_);
    store_.Put(node, value);
  }

  // Fetches and decodes one adjacency entry; nullptr if absent.
  AdjacencyPtr Get(NodeId node);

  // Services one multiget batch: takes the server mutex once, looks up and
  // decodes every key (nullptr where absent), positionally matching `nodes`.
  // Stats are updated exactly as the equivalent sequence of Get() calls.
  std::vector<AdjacencyPtr> MultiGet(std::span<const NodeId> nodes);

  void Delete(NodeId node) {
    std::lock_guard<std::mutex> lock(mu_);
    store_.Delete(node);
  }

  const LogStructuredStore& store() const { return store_; }
  const StorageServerStats& stats() const { return stats_; }
  void ResetStats() {
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = StorageServerStats{};
  }
  // Called once per multiget batch for queueing/statistics purposes.
  void NoteBatch() {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.batch_requests;
  }

 private:
  uint32_t id_;
  mutable std::mutex mu_;
  LogStructuredStore store_;
  StorageServerStats stats_;
};

// One asynchronous multiget request against a single storage server: the
// handle is created by StorageTier::StartMultiGet, executed by whichever
// thread plays the "wire" (the issuing thread itself, or a per-processor
// fetch thread in the threaded runtime), and completed exactly once. The
// issuing processor overlaps cache probes with the outstanding request and
// collects the values with Wait().
class MultiGetHandle {
 public:
  MultiGetHandle(StorageServer* server, std::vector<NodeId> keys)
      : server_(server), keys_(std::move(keys)) {}

  MultiGetHandle(const MultiGetHandle&) = delete;
  MultiGetHandle& operator=(const MultiGetHandle&) = delete;

  uint32_t server_id() const { return server_->id(); }
  const std::vector<NodeId>& keys() const { return keys_; }

  // Services the request against the server (thread-safe; the server
  // serialises internally) and publishes completion. Call exactly once.
  // Execute() both fetches and completes; ExecuteOnly() + MarkDone() let a
  // fetch thread service the gets first and hold the completion back until a
  // modelled network round trip has elapsed.
  void Execute() {
    ExecuteOnly();
    MarkDone();
  }
  void ExecuteOnly() { values_ = server_->MultiGet(keys_); }
  void MarkDone() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      done_ = true;
    }
    cv_.notify_all();
  }

  bool done() const {
    std::lock_guard<std::mutex> lock(mu_);
    return done_;
  }

  // Blocks until completion; the returned values positionally match keys().
  const std::vector<AdjacencyPtr>& Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return done_; });
    return values_;
  }

 private:
  StorageServer* server_;
  std::vector<NodeId> keys_;
  std::vector<AdjacencyPtr> values_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
};

// Seam between "who issues a multiget" and "who runs it". The default
// (nullptr executor at the call sites) services the request inline on the
// issuing thread; the threaded runtime submits to a per-processor fetch
// thread so the request genuinely overlaps with the processor's cache work.
class BatchFetchExecutor {
 public:
  virtual ~BatchFetchExecutor() = default;
  virtual void Submit(std::shared_ptr<MultiGetHandle> handle) = 0;
};

class StorageTier {
 public:
  explicit StorageTier(size_t num_servers, uint32_t hash_seed = 0x9747b28cu);

  // Loads every node's adjacency entry, placed by MurmurHash3 (default) or
  // by an explicit node->server assignment.
  void LoadGraph(const Graph& g);
  void LoadGraph(const Graph& g, const PartitionAssignment& placement);

  size_t num_servers() const { return servers_.size(); }
  uint32_t ServerOf(NodeId node) const;

  // Fetch through the tier (resolves the owning server).
  AdjacencyPtr Get(NodeId node);

  // Opens an async multiget against one server (counted as one batch for
  // that server's queueing stats). The handle is NOT serviced yet — hand it
  // to a BatchFetchExecutor, or call Execute() inline, then Wait().
  std::shared_ptr<MultiGetHandle> StartMultiGet(uint32_t server,
                                                std::vector<NodeId> keys);

  StorageServer& server(size_t i) { return *servers_[i]; }
  const StorageServer& server(size_t i) const { return *servers_[i]; }

  uint64_t TotalLiveBytes() const;
  uint64_t TotalValues() const;

 private:
  std::vector<std::unique_ptr<StorageServer>> servers_;
  HashPartitioner hasher_;
  // Empty when hash placement is in effect.
  PartitionAssignment explicit_placement_;
};

}  // namespace grouting

#endif  // GROUTING_SRC_STORAGE_STORAGE_TIER_H_
