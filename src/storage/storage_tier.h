// The decoupled storage tier: M storage servers, each a log-structured KV
// store, holding the graph horizontally partitioned by MurmurHash3 over node
// ids (RAMCloud's default placement, "inexpensive hash partitioning") or by
// an explicit assignment for partitioning ablations.

#ifndef GROUTING_SRC_STORAGE_STORAGE_TIER_H_
#define GROUTING_SRC_STORAGE_STORAGE_TIER_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "src/graph/graph.h"
#include "src/partition/partitioner.h"
#include "src/partition/repartition.h"
#include "src/storage/adjacency.h"
#include "src/storage/kv_store.h"

namespace grouting {

struct StorageServerStats {
  uint64_t get_requests = 0;   // individual key lookups
  uint64_t batch_requests = 0;  // multiget batches (the DES queueing unit)
  uint64_t values_served = 0;
  uint64_t bytes_served = 0;
  uint64_t misses = 0;  // keys not found
};

// One storage server. Requests are serialised by an internal mutex — a real
// server services its request queue sequentially, and this is exactly what
// lets the threaded runtime share the tier between processor threads.
class StorageServer {
 public:
  explicit StorageServer(uint32_t id) : id_(id) {}

  uint32_t id() const { return id_; }

  // When on, every decode keeps a copy of the wire blob on the entry
  // (AdjacencyEntry::wire) so compressed processor caches can admit the
  // encoded bytes. Set once at cluster assembly, before any traffic.
  void set_retain_wire(bool retain) { retain_wire_ = retain; }

  void Load(NodeId node, std::span<const uint8_t> value) {
    std::lock_guard<std::mutex> lock(mu_);
    store_.Put(node, value);
  }

  // Fetches and decodes one adjacency entry; nullptr if absent.
  AdjacencyPtr Get(NodeId node);

  // Services one multiget batch: takes the server mutex once, looks up and
  // decodes every key (nullptr where absent), positionally matching `nodes`.
  // Stats are updated exactly as the equivalent sequence of Get() calls.
  std::vector<AdjacencyPtr> MultiGet(std::span<const NodeId> nodes);

  void Delete(NodeId node) {
    std::lock_guard<std::mutex> lock(mu_);
    store_.Delete(node);
  }

  const LogStructuredStore& store() const { return store_; }
  const StorageServerStats& stats() const { return stats_; }
  void ResetStats() {
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = StorageServerStats{};
  }
  // Called once per multiget batch for queueing/statistics purposes.
  void NoteBatch() {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.batch_requests;
  }

  // --- Partition-migration support (see StorageTier::MigratePartition) ---

  // Copies one raw value out of the store WITHOUT touching serving stats —
  // migration reads are not workload traffic. nullopt if absent.
  std::optional<std::vector<uint8_t>> PeekBlob(NodeId node);

  // Epoch-tagged accounting of multiget handles opened against this server
  // but not yet serviced. StartMultiGet registers each handle in the
  // current epoch's slot; the handle releases it once ExecuteOnly has
  // published its values (or on destruction if never serviced). A migration
  // drain advances the epoch and waits for the OLD epoch's slot to empty —
  // in-flight requests finish against the old owner while new ones (tagged
  // with the new epoch) never block the wait.
  std::atomic<int64_t>* RegisterOpenBatch() {
    std::atomic<int64_t>* slot =
        &open_batches_[epoch_.load(std::memory_order_acquire) & 1];
    slot->fetch_add(1, std::memory_order_acq_rel);
    return slot;
  }
  void DrainOpenBatches();

 private:
  uint32_t id_;
  mutable std::mutex mu_;
  LogStructuredStore store_;
  StorageServerStats stats_;
  bool retain_wire_ = false;
  // Migration-drain state (used only when the tier has repartitioning on).
  std::atomic<uint32_t> epoch_{0};
  std::array<std::atomic<int64_t>, 2> open_batches_{};
};

// One asynchronous multiget request against a single storage server: the
// handle is created by StorageTier::StartMultiGet, executed by whichever
// thread plays the "wire" (the issuing thread itself, or a per-processor
// fetch thread in the threaded runtime), and completed exactly once. The
// issuing processor overlaps cache probes with the outstanding request and
// collects the values with Wait().
class MultiGetHandle {
 public:
  MultiGetHandle(StorageServer* server, std::vector<NodeId> keys)
      : server_(server), keys_(std::move(keys)) {}

  ~MultiGetHandle() { ReleaseOpenSlot(); }

  MultiGetHandle(const MultiGetHandle&) = delete;
  MultiGetHandle& operator=(const MultiGetHandle&) = delete;

  uint32_t server_id() const { return server_->id(); }
  const std::vector<NodeId>& keys() const { return keys_; }

  // Services the request against the server (thread-safe; the server
  // serialises internally) and publishes completion. Call exactly once.
  // Execute() both fetches and completes; ExecuteOnly() + MarkDone() let a
  // fetch thread service the gets first and hold the completion back until a
  // modelled network round trip has elapsed.
  void Execute() {
    ExecuteOnly();
    MarkDone();
  }
  void ExecuteOnly() {
    values_ = server_->MultiGet(keys_);
    uint64_t bytes = 0;
    for (const AdjacencyPtr& v : values_) {
      if (v != nullptr) {
        bytes += v->WireBytes();
      }
    }
    payload_bytes_ = bytes;
    ReleaseOpenSlot();
  }
  void MarkDone() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      done_ = true;
    }
    cv_.notify_all();
  }

  bool done() const {
    std::lock_guard<std::mutex> lock(mu_);
    return done_;
  }

  // Wire bytes of the reply payload (sum of the fetched blobs' encoded
  // sizes). Valid after Execute/ExecuteOnly; what the modelled network
  // round trip charges per kilobyte — so compressed blobs ship faster.
  uint64_t payload_bytes() const { return payload_bytes_; }

  // Blocks until completion; the returned values positionally match keys().
  const std::vector<AdjacencyPtr>& Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return done_; });
    return values_;
  }

  // Migration-drain accounting (repartitioning only; nullptr otherwise):
  // the epoch slot StorageTier::StartMultiGet registered this handle in.
  void set_open_slot(std::atomic<int64_t>* slot) { open_slot_ = slot; }

 private:
  void ReleaseOpenSlot() {
    std::atomic<int64_t>* slot = open_slot_.exchange(nullptr, std::memory_order_acq_rel);
    if (slot != nullptr) {
      slot->fetch_sub(1, std::memory_order_acq_rel);
    }
  }

  StorageServer* server_;
  std::vector<NodeId> keys_;
  std::vector<AdjacencyPtr> values_;
  uint64_t payload_bytes_ = 0;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  std::atomic<std::atomic<int64_t>*> open_slot_{nullptr};
};

// Seam between "who issues a multiget" and "who runs it". The default
// (nullptr executor at the call sites) services the request inline on the
// issuing thread; the threaded runtime submits to a per-processor fetch
// thread so the request genuinely overlaps with the processor's cache work.
class BatchFetchExecutor {
 public:
  virtual ~BatchFetchExecutor() = default;
  virtual void Submit(std::shared_ptr<MultiGetHandle> handle) = 0;
};

// One online graph mutation against the logical node universe [0, num_nodes)
// of the loaded graph. kAddVertex materialises a node that was withheld at
// load time (LoadGraphSubset), writing its full adjacency blob; kAddEdge /
// kRemoveEdge rewrite BOTH endpoints' adjacency lists (u's out-list and v's
// in-list) as versioned single-key writes. apply_us is the schedule time:
// virtual µs on the simulated engine, wall µs from the run epoch on the
// threaded engine; <= 0 applies before the first arrival (quiesced).
struct GraphMutation {
  enum class Kind : uint8_t { kAddVertex, kAddEdge, kRemoveEdge };
  Kind kind = Kind::kAddVertex;
  NodeId u = 0;
  NodeId v = kInvalidNode;     // edge endpoint; unused for kAddVertex
  Label label = kNoLabel;      // edge label written on kAddEdge
  double apply_us = 0.0;
};

class StorageTier {
 public:
  explicit StorageTier(size_t num_servers, uint32_t hash_seed = 0x9747b28cu);

  // Loads every node's adjacency entry, placed by MurmurHash3 (default) or
  // by an explicit node->server assignment. Blobs are written in the tier's
  // configured wire encoding (set_encoding, before load).
  void LoadGraph(const Graph& g);
  void LoadGraph(const Graph& g, const PartitionAssignment& placement);

  // Mutation-path load: writes blobs only for nodes with keep[u] != 0 but
  // registers the ENTIRE node universe with the partition map, so nodes
  // materialised later by ApplyMutation(kAddVertex) migrate and replicate
  // like any other key (migration copies already skip absent keys). Present
  // nodes keep their FULL adjacency (edges to withheld neighbours included)
  // — a traversal reaching a withheld node simply sees it as absent until a
  // kAddVertex lands. Requires EnableMutations first.
  void LoadGraphSubset(const Graph& g, std::span<const uint8_t> keep);

  // Wire encoding for subsequently loaded blobs (decode auto-detects, so
  // changing it mid-life only affects new writes).
  void set_encoding(AdjacencyEncoding encoding) { encoding_ = encoding; }
  AdjacencyEncoding encoding() const { return encoding_; }

  // Multi-tenant federation: LoadGraph(g) writes one keyspace copy of the
  // graph per tenant, tenant t's node u stored under the global key
  // u + t * num_nodes — placement, repartitioning, and replication operate
  // on global keys unchanged. Set before LoadGraph; 1 (the default) is the
  // classic single keyspace. Incompatible with explicit placement.
  void set_num_tenants(uint32_t num_tenants) {
    GROUTING_CHECK(num_tenants > 0);
    num_tenants_ = num_tenants;
  }
  uint32_t num_tenants() const { return num_tenants_; }

  // Propagates retain-wire mode (see StorageServer::set_retain_wire) to
  // every server, and to this tier's own PeekCurrent decodes.
  void set_retain_wire(bool retain);

  // logical (v1) bytes / encoded wire bytes across everything loaded so
  // far; 1.0 under raw encoding (and before any load).
  double AdjacencyCompressionRatio() const {
    return encoded_bytes_loaded_ == 0
               ? 1.0
               : static_cast<double>(logical_bytes_loaded_) /
                     static_cast<double>(encoded_bytes_loaded_);
  }

  size_t num_servers() const { return servers_.size(); }
  uint32_t ServerOf(NodeId node) const;

  // Read-path server choice. With replication off this IS ServerOf (same
  // bits, no side effects). With replication on and the key's partition
  // replicated, picks between two hash-derived candidates from
  // {owner + replicas} by power-of-two-choices on the per-server read-load
  // counters, bumps the winner's counter, and counts replica_reads when a
  // non-primary wins. Used by Get and by CachedStorageSource when it groups
  // misses into per-server multiget batches.
  uint32_t ReadServerOf(NodeId node);

  // Fetch through the tier (resolves a serving replica via ReadServerOf).
  // Under repartitioning/replication a lookup that raced a flip may miss on
  // the chosen server; it is then re-resolved stamp-stably through the
  // primary, which always holds every live key of its partition.
  AdjacencyPtr Get(NodeId node);

  // Stats-free fetch through the current map: no serving stats, no monitor
  // record. Used by the migration-race healing path (src/proc/
  // ResolveMigratedMisses) — the batch that raced the migration already
  // counted the key as workload traffic once; counting the re-read too
  // would make just-migrated partitions look hotter than they are.
  AdjacencyPtr PeekCurrent(NodeId node);

  // Opens an async multiget against one server (counted as one batch for
  // that server's queueing stats). The handle is NOT serviced yet — hand it
  // to a BatchFetchExecutor, or call Execute() inline, then Wait().
  std::shared_ptr<MultiGetHandle> StartMultiGet(uint32_t server,
                                                std::vector<NodeId> keys);

  StorageServer& server(size_t i) { return *servers_[i]; }
  const StorageServer& server(size_t i) const { return *servers_[i]; }

  uint64_t TotalLiveBytes() const;
  uint64_t TotalValues() const;

  // --- Adaptive repartitioning (src/partition/repartition.h) -------------
  //
  // EnableRepartitioning installs a PartitionMap over P = partitions_per_
  // server x num_servers virtual partitions (same placement hash, so the
  // initial layout is byte-identical to classic hash placement) plus a
  // PartitionMonitor fed one Record() per key from Get/StartMultiGet.
  // Incompatible with an explicit placement (there is no partition
  // structure to migrate): LoadGraph(g, placement) after enabling — or
  // enabling after it — is a checked error.
  void EnableRepartitioning(uint32_t partitions_per_server);

  bool repartitioning_enabled() const { return partition_map_ != nullptr; }
  const PartitionMap* partition_map() const { return partition_map_.get(); }
  PartitionMonitor* partition_monitor() { return partition_monitor_.get(); }

  // Turns on replica-aware read routing (ReadServerOf) and the
  // AddReplica/RemoveReplica executors. Requires EnableRepartitioning
  // first — replicas are tracked per virtual partition in the same map.
  void EnableReplication();
  bool replication_enabled() const { return replication_on_; }

  // Reads served by a non-primary replica (p2c picked a replica over the
  // owner). 0 with replication off.
  uint64_t replica_reads() const {
    return replica_reads_.load(std::memory_order_relaxed);
  }

  // What one executed migration / promotion / demotion physically moved.
  struct MigrationResult {
    enum class Kind { kMigrate, kPromote, kDemote };
    Kind kind = Kind::kMigrate;
    uint32_t partition = 0;
    uint32_t from = 0;
    uint32_t to = 0;
    uint64_t keys_moved = 0;
    uint64_t bytes_moved = 0;
  };

  // Moves one partition to a new owner, exactly-once for concurrent
  // readers: (1) copy every key of the partition to the destination, (2)
  // flip the map entry so new lookups resolve to the destination, (3) drain
  // multiget handles opened against the source before the flip (they still
  // find the keys — copies are not yet deleted), (4) delete the source
  // copies. A reader that raced the flip between its ServerOf lookup and
  // StartMultiGet may still miss; CachedStorageSource re-resolves such
  // misses through the tier (ResolveMigratedMisses in src/proc/).
  MigrationResult MigratePartition(uint32_t partition, uint32_t to);

  // Creates a replica of one partition on `server`: copy every key of the
  // partition to the replica, THEN flip the replica set into the map — so
  // the moment a reader can route to the replica, the replica already holds
  // the data. No drain is needed to add capacity. kind = kPromote;
  // from = the primary copied from, to = the new replica server.
  MigrationResult AddReplica(uint32_t partition, uint32_t server);

  // Tears one replica down, exactly-once for concurrent readers: (1) flip
  // the replica out of the map so new lookups stop routing to it, (2)
  // drain multiget handles opened against it before the flip (the copies
  // are still live), (3) delete the copies. A reader that raced the flip
  // between ReadServerOf and StartMultiGet may miss; the processor-side
  // healing re-resolves through the primary, which always holds the keys.
  // kind = kDemote; from = the replica server torn down, to = the primary.
  MigrationResult RemoveReplica(uint32_t partition, uint32_t server);

  // Cumulative per-server served get counts (the storage_load_imbalance
  // numerator/denominator).
  std::vector<uint64_t> GetRequestsPerServer() const;

  // --- Online graph mutations (versioned adjacency writes) ---------------
  //
  // EnableMutations pins the mutation universe to `g` (kAddVertex blob
  // content comes from it) and allocates one monotonic version counter per
  // global key (num_tenants x num_nodes). Call after set_num_tenants and
  // before LoadGraph / LoadGraphSubset. The graph must outlive the tier.
  void EnableMutations(const Graph& g);
  bool mutations_enabled() const { return node_version_ != nullptr; }

  // Current version stamp of a global key: 0 until the first mutation
  // touches it (and always 0 with mutations off, so version comparisons
  // degenerate to no-ops on the read path). Monotonic per key; bumped AFTER
  // the new blob is visible on every holder, so a reader that snapshots the
  // version BEFORE fetching can never associate a new version with an old
  // blob — the invariant the compressed-cache staleness check rests on.
  uint64_t NodeVersion(NodeId key) const {
    return node_version_ == nullptr
               ? 0
               : node_version_[key].load(std::memory_order_acquire);
  }

  // Applies one mutation to every tenant keyspace: encodes the new
  // adjacency under the active encoding, writes it to the owner AND every
  // current replica of the key's partition, then bumps the key's version.
  // Serialised against MigratePartition / AddReplica / RemoveReplica by the
  // tier's write mutex, so a write can never be lost mid-copy and a deleted
  // replica copy can never resurrect. Readers never take that lock. An edge
  // half whose endpoint blob is absent (withheld node) is dropped — the
  // edge is already in the universe graph the node materialises from.
  // Returns the number of key blobs rewritten.
  uint64_t ApplyMutation(const GraphMutation& m);

 private:
  // Unlocked bodies; the public entry points (and ApplyMutation) hold
  // write_mu_. MigratePartitionLocked tears down replicas via
  // RemoveReplicaLocked, which is why the lock cannot simply be recursive
  // at the public boundary.
  MigrationResult MigratePartitionLocked(uint32_t partition, uint32_t to);
  MigrationResult AddReplicaLocked(uint32_t partition, uint32_t server);
  MigrationResult RemoveReplicaLocked(uint32_t partition, uint32_t server);
  // Writes `blob` for `key` to the owner and every current replica, then
  // bumps the key's version. Caller holds write_mu_.
  void WriteVersionedLocked(NodeId key, std::span<const uint8_t> blob);
  // Rewrites one endpoint's adjacency half for an edge mutation (u's
  // out-list when `out`, else v's in-list). Returns 1 if a blob was
  // rewritten, 0 if the endpoint is absent. Caller holds write_mu_.
  uint64_t MutateEdgeHalfLocked(NodeId key, NodeId other, Label label, bool insert,
                                bool out);
  std::vector<std::unique_ptr<StorageServer>> servers_;
  HashPartitioner hasher_;
  AdjacencyEncoding encoding_ = AdjacencyEncoding::kRaw;
  uint32_t num_tenants_ = 1;
  bool retain_wire_ = false;
  uint64_t logical_bytes_loaded_ = 0;
  uint64_t encoded_bytes_loaded_ = 0;
  // Empty when hash placement is in effect.
  PartitionAssignment explicit_placement_;
  // Installed by EnableRepartitioning; null = classic static placement.
  std::unique_ptr<PartitionMap> partition_map_;
  std::unique_ptr<PartitionMonitor> partition_monitor_;
  // Replica-aware read routing (EnableReplication). read_load_ is the p2c
  // load signal: one relaxed bump per ReadServerOf resolution, approximate
  // by design (staleness just makes p2c pick the second candidate).
  bool replication_on_ = false;
  std::unique_ptr<std::atomic<uint64_t>[]> read_load_;
  std::atomic<uint64_t> replica_reads_{0};
  // Read-sequence counter mixed into the p2c candidate hash so a hot key's
  // candidate pair rotates over its holder set instead of pinning.
  std::atomic<uint64_t> read_seq_{0};
  // Per-partition key lists, built once at LoadGraph when repartitioning is
  // on. Partition membership is a pure hash of the key and the tier's key
  // population is fixed after load (only migrations move keys between
  // servers; LoadGraphSubset registers withheld keys up front), so each
  // migration walks exactly its partition's keys instead of scanning the
  // whole source server under its mutex.
  std::vector<std::vector<NodeId>> partition_keys_;
  // Mutation state (EnableMutations). write_mu_ serialises mutations with
  // the copy/flip/drain/delete machinery; node_version_ is one atomic per
  // global key.
  mutable std::mutex write_mu_;
  std::unique_ptr<std::atomic<uint64_t>[]> node_version_;
  const Graph* universe_graph_ = nullptr;
  uint64_t universe_nodes_ = 0;
};

}  // namespace grouting

#endif  // GROUTING_SRC_STORAGE_STORAGE_TIER_H_
