// In-memory log-structured key-value store, modelled after RAMCloud's
// storage design (Ousterhout et al.): values are appended to fixed-size
// segments; a hash index maps keys to their latest location; dead space from
// overwrites/deletes is reclaimed by a cleaner (Compact).
//
// This is the per-server backing store of the storage tier. Single-owner
// (one server thread); no internal locking.

#ifndef GROUTING_SRC_STORAGE_KV_STORE_H_
#define GROUTING_SRC_STORAGE_KV_STORE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

namespace grouting {

struct KvStoreStats {
  uint64_t puts = 0;
  uint64_t gets = 0;
  uint64_t deletes = 0;
  uint64_t compactions = 0;
};

class LogStructuredStore {
 public:
  explicit LogStructuredStore(size_t segment_bytes = 1 << 20);

  // Inserts or overwrites. The value is copied into the log.
  void Put(uint64_t key, std::span<const uint8_t> value);

  // Returns a view into the log, valid until the next Compact() (appends
  // never move existing records). nullopt if absent.
  std::optional<std::span<const uint8_t>> Get(uint64_t key);

  // Batched lookup — the storage half of a multiget request: one index probe
  // per key, positionally matching `keys`. Each returned span follows the
  // same validity rule as Get(); stats count one get per key.
  std::vector<std::optional<std::span<const uint8_t>>> MultiGet(
      std::span<const uint64_t> keys);

  bool Delete(uint64_t key);
  bool Contains(uint64_t key) const { return index_.count(key) > 0; }

  // Rewrites live records into fresh segments, dropping dead space.
  // Invalidates all previously returned Get() spans.
  void Compact();

  size_t entry_count() const { return index_.size(); }
  uint64_t live_bytes() const { return live_bytes_; }
  uint64_t log_bytes() const { return log_bytes_; }
  // live / log; 1.0 means no dead space.
  double Utilization() const;
  const KvStoreStats& stats() const { return stats_; }

 private:
  struct Segment {
    std::vector<uint8_t> data;
  };
  struct Location {
    uint32_t segment;
    uint32_t offset;
    uint32_t length;
  };

  // Appends raw bytes to the open segment (opening a new one as needed) and
  // returns where they landed.
  Location Append(std::span<const uint8_t> value);

  size_t segment_bytes_;
  std::vector<std::unique_ptr<Segment>> segments_;
  std::unordered_map<uint64_t, Location> index_;
  uint64_t live_bytes_ = 0;
  uint64_t log_bytes_ = 0;
  KvStoreStats stats_;
};

}  // namespace grouting

#endif  // GROUTING_SRC_STORAGE_KV_STORE_H_
