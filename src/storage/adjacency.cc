#include "src/storage/adjacency.h"

#include <cstring>

#include "src/util/check.h"

namespace grouting {
namespace {

constexpr uint8_t kV2Magic = 0xC2;
constexpr uint8_t kV2Version = 0x02;

// ---- v1 fixed-width helpers --------------------------------------------

void AppendU16(std::vector<uint8_t>* buf, uint16_t v) {
  buf->push_back(static_cast<uint8_t>(v & 0xff));
  buf->push_back(static_cast<uint8_t>(v >> 8));
}

void AppendU32(std::vector<uint8_t>* buf, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf->push_back(static_cast<uint8_t>((v >> (8 * i)) & 0xff));
  }
}

uint16_t ReadU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

uint32_t ReadU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;  // little-endian host assumed (x86/ARM64); documented in header
}

void AppendEdges(std::vector<uint8_t>* buf, std::span<const Edge> edges) {
  for (const Edge& e : edges) {
    AppendU32(buf, e.dst);
    AppendU16(buf, e.label);
  }
}

// The v1 structural signature: exact size for the declared counts, reserved
// bytes zero. Checked BEFORE the v2 magic so every legacy blob keeps
// decoding as v1 (a node id may legitimately start with the magic bytes).
bool LooksLikeRawV1(std::span<const uint8_t> bytes) {
  if (bytes.size() < 16 || bytes[6] != 0 || bytes[7] != 0) {
    return false;
  }
  const uint64_t out_count = ReadU32(bytes.data() + 8);
  const uint64_t in_count = ReadU32(bytes.data() + 12);
  return bytes.size() == 16 + 6 * (out_count + in_count);
}

// ---- v2 varint helpers --------------------------------------------------

void AppendVarint(std::vector<uint8_t>* buf, uint64_t v) {
  while (v >= 0x80) {
    buf->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf->push_back(static_cast<uint8_t>(v));
}

uint64_t Zigzag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

int64_t Unzigzag(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

// Reads one LEB128 varint from [*pp, end); false on truncation/overflow.
// Decode runs on every compressed cache hit, so the 1- and 2-byte shapes
// (sorted CSR deltas, run lengths, small labels) take branch-light fast
// paths before the general guarded loop.
inline bool ReadVarint(const uint8_t** pp, const uint8_t* end, uint64_t* out) {
  const uint8_t* p = *pp;
  if (p < end && p[0] < 0x80) {
    *out = p[0];
    *pp = p + 1;
    return true;
  }
  if (end - p >= 2 && p[1] < 0x80) {
    *out = static_cast<uint64_t>(p[0] & 0x7f) |
           (static_cast<uint64_t>(p[1]) << 7);
    *pp = p + 2;
    return true;
  }
  uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (p >= end) {
      return false;
    }
    const uint8_t byte = *p++;
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *out = v;
      *pp = p;
      return true;
    }
  }
  return false;  // > 10 continuation bytes: not a valid 64-bit varint
}

// span/size_t adapter for the header fields and tests' call shape.
bool ReadVarint(std::span<const uint8_t> bytes, size_t* pos, uint64_t* out) {
  const uint8_t* p = bytes.data() + *pos;
  if (!ReadVarint(&p, bytes.data() + bytes.size(), out)) {
    return false;
  }
  *pos = static_cast<size_t>(p - bytes.data());
  return true;
}

// Sorted (or arbitrary, via zigzag) dst list as successive deltas.
void AppendDeltaDsts(std::vector<uint8_t>* buf, std::span<const Edge> edges) {
  int64_t prev = 0;
  for (const Edge& e : edges) {
    AppendVarint(buf, Zigzag(static_cast<int64_t>(e.dst) - prev));
    prev = static_cast<int64_t>(e.dst);
  }
}

// Edge labels as (run length, label) pairs — hub neighbourhoods repeat the
// same relation label in long runs.
void AppendRleLabels(std::vector<uint8_t>* buf, std::span<const Edge> edges) {
  size_t i = 0;
  while (i < edges.size()) {
    size_t run = 1;
    while (i + run < edges.size() && edges[i + run].label == edges[i].label) {
      ++run;
    }
    AppendVarint(buf, run);
    AppendVarint(buf, edges[i].label);
    i += run;
  }
}

bool ReadDeltaDsts(const uint8_t** pp, const uint8_t* end,
                   std::vector<Edge>* edges) {
  const uint8_t* p = *pp;
  int64_t prev = 0;
  for (Edge& e : *edges) {
    uint64_t raw = 0;
    if (!ReadVarint(&p, end, &raw)) {
      return false;
    }
    const int64_t dst = prev + Unzigzag(raw);
    if (dst < 0 || dst > static_cast<int64_t>(kInvalidNode)) {
      return false;
    }
    e.dst = static_cast<NodeId>(dst);
    prev = dst;
  }
  *pp = p;
  return true;
}

bool ReadRleLabels(const uint8_t** pp, const uint8_t* end,
                   std::vector<Edge>* edges) {
  const uint8_t* p = *pp;
  size_t i = 0;
  while (i < edges->size()) {
    uint64_t run = 0;
    uint64_t label = 0;
    if (!ReadVarint(&p, end, &run) || !ReadVarint(&p, end, &label)) {
      return false;
    }
    if (run == 0 || run > edges->size() - i || label > 0xffff) {
      return false;
    }
    for (uint64_t k = 0; k < run; ++k) {
      (*edges)[i++].label = static_cast<Label>(label);
    }
  }
  *pp = p;
  return true;
}

std::vector<uint8_t> EncodeV1(NodeId node, Label node_label,
                              std::span<const Edge> out, std::span<const Edge> in) {
  std::vector<uint8_t> buf;
  buf.reserve(16 + 6 * (out.size() + in.size()));
  AppendU32(&buf, node);
  AppendU16(&buf, node_label);
  AppendU16(&buf, 0);
  AppendU32(&buf, static_cast<uint32_t>(out.size()));
  AppendU32(&buf, static_cast<uint32_t>(in.size()));
  AppendEdges(&buf, out);
  AppendEdges(&buf, in);
  return buf;
}

std::vector<uint8_t> EncodeV2(NodeId node, Label node_label,
                              std::span<const Edge> out, std::span<const Edge> in) {
  std::vector<uint8_t> buf;
  buf.reserve(8 + 2 * (out.size() + in.size()));
  buf.push_back(kV2Magic);
  buf.push_back(kV2Version);
  AppendVarint(&buf, node);
  AppendVarint(&buf, node_label);
  AppendVarint(&buf, out.size());
  AppendVarint(&buf, in.size());
  AppendDeltaDsts(&buf, out);
  AppendRleLabels(&buf, out);
  AppendDeltaDsts(&buf, in);
  AppendRleLabels(&buf, in);
  // Disambiguation pad: if this v2 blob would also pass the v1 structural
  // check, one trailing zero byte breaks the exact-size match (the v2
  // decoder tolerates a single zero pad; sizes 16+6k cannot collide again
  // after a +1).
  if (LooksLikeRawV1(buf)) {
    buf.push_back(0);
  }
  return buf;
}

AdjacencyPtr DecodeV1(std::span<const uint8_t> bytes) {
  auto entry = std::make_shared<AdjacencyEntry>();
  entry->node = ReadU32(bytes.data());
  entry->node_label = ReadU16(bytes.data() + 4);
  const uint32_t out_count = ReadU32(bytes.data() + 8);
  const uint32_t in_count = ReadU32(bytes.data() + 12);
  const uint8_t* p = bytes.data() + 16;
  entry->out.resize(out_count);
  for (uint32_t i = 0; i < out_count; ++i, p += 6) {
    entry->out[i] = Edge{ReadU32(p), ReadU16(p + 4)};
  }
  entry->in.resize(in_count);
  for (uint32_t i = 0; i < in_count; ++i, p += 6) {
    entry->in[i] = Edge{ReadU32(p), ReadU16(p + 4)};
  }
  return entry;
}

AdjacencyPtr DecodeV2(std::span<const uint8_t> bytes) {
  size_t pos = 2;  // past magic + version
  uint64_t node = 0;
  uint64_t label = 0;
  uint64_t out_count = 0;
  uint64_t in_count = 0;
  if (!ReadVarint(bytes, &pos, &node) || !ReadVarint(bytes, &pos, &label) ||
      !ReadVarint(bytes, &pos, &out_count) || !ReadVarint(bytes, &pos, &in_count)) {
    return nullptr;
  }
  // Each encoded edge costs at least one byte for its dst delta, so counts
  // beyond the remaining payload are corruption — reject before allocating.
  if (node > kInvalidNode || label > 0xffff || out_count > bytes.size() ||
      in_count > bytes.size() || out_count + in_count > bytes.size() - pos) {
    return nullptr;
  }
  auto entry = std::make_shared<AdjacencyEntry>();
  entry->node = static_cast<NodeId>(node);
  entry->node_label = static_cast<Label>(label);
  entry->out.resize(out_count);
  entry->in.resize(in_count);
  const uint8_t* p = bytes.data() + pos;
  const uint8_t* end = bytes.data() + bytes.size();
  if (!ReadDeltaDsts(&p, end, &entry->out) ||
      !ReadRleLabels(&p, end, &entry->out) ||
      !ReadDeltaDsts(&p, end, &entry->in) ||
      !ReadRleLabels(&p, end, &entry->in)) {
    return nullptr;
  }
  const size_t remaining = static_cast<size_t>(end - p);
  if (remaining > 1 || (remaining == 1 && *p != 0)) {
    return nullptr;  // trailing garbage (one zero pad byte is legitimate)
  }
  return entry;
}

}  // namespace

std::string AdjacencyEncodingName(AdjacencyEncoding encoding) {
  switch (encoding) {
    case AdjacencyEncoding::kRaw:
      return "raw";
    case AdjacencyEncoding::kDeltaVarint:
      return "delta_varint";
  }
  GROUTING_CHECK_MSG(false, "unknown adjacency encoding");
  return "";
}

std::vector<uint8_t> EncodeAdjacency(const Graph& g, NodeId u,
                                     AdjacencyEncoding encoding) {
  const auto out = g.OutNeighbors(u);
  const auto in = g.InNeighbors(u);
  return encoding == AdjacencyEncoding::kDeltaVarint
             ? EncodeV2(u, g.node_label(u), out, in)
             : EncodeV1(u, g.node_label(u), out, in);
}

std::vector<uint8_t> EncodeAdjacency(const AdjacencyEntry& entry,
                                     AdjacencyEncoding encoding) {
  return encoding == AdjacencyEncoding::kDeltaVarint
             ? EncodeV2(entry.node, entry.node_label, entry.out, entry.in)
             : EncodeV1(entry.node, entry.node_label, entry.out, entry.in);
}

AdjacencyPtr DecodeAdjacency(std::span<const uint8_t> bytes, bool retain_wire) {
  AdjacencyPtr decoded;
  if (LooksLikeRawV1(bytes)) {
    decoded = DecodeV1(bytes);
  } else if (bytes.size() >= 2 && bytes[0] == kV2Magic && bytes[1] == kV2Version) {
    decoded = DecodeV2(bytes);
  }
  if (decoded == nullptr) {
    return nullptr;
  }
  auto* entry = const_cast<AdjacencyEntry*>(decoded.get());
  entry->wire_bytes = bytes.size();
  if (retain_wire) {
    entry->wire =
        std::make_shared<const std::vector<uint8_t>>(bytes.begin(), bytes.end());
  }
  return decoded;
}

}  // namespace grouting
