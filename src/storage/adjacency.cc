#include "src/storage/adjacency.h"

#include <cstring>

namespace grouting {
namespace {

void AppendU16(std::vector<uint8_t>* buf, uint16_t v) {
  buf->push_back(static_cast<uint8_t>(v & 0xff));
  buf->push_back(static_cast<uint8_t>(v >> 8));
}

void AppendU32(std::vector<uint8_t>* buf, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf->push_back(static_cast<uint8_t>((v >> (8 * i)) & 0xff));
  }
}

uint16_t ReadU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

uint32_t ReadU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;  // little-endian host assumed (x86/ARM64); documented in header
}

void AppendEdges(std::vector<uint8_t>* buf, std::span<const Edge> edges) {
  for (const Edge& e : edges) {
    AppendU32(buf, e.dst);
    AppendU16(buf, e.label);
  }
}

}  // namespace

std::vector<uint8_t> EncodeAdjacency(const Graph& g, NodeId u) {
  const auto out = g.OutNeighbors(u);
  const auto in = g.InNeighbors(u);
  std::vector<uint8_t> buf;
  buf.reserve(16 + 6 * (out.size() + in.size()));
  AppendU32(&buf, u);
  AppendU16(&buf, g.node_label(u));
  AppendU16(&buf, 0);
  AppendU32(&buf, static_cast<uint32_t>(out.size()));
  AppendU32(&buf, static_cast<uint32_t>(in.size()));
  AppendEdges(&buf, out);
  AppendEdges(&buf, in);
  return buf;
}

std::vector<uint8_t> EncodeAdjacency(const AdjacencyEntry& entry) {
  std::vector<uint8_t> buf;
  buf.reserve(entry.SerializedBytes());
  AppendU32(&buf, entry.node);
  AppendU16(&buf, entry.node_label);
  AppendU16(&buf, 0);
  AppendU32(&buf, static_cast<uint32_t>(entry.out.size()));
  AppendU32(&buf, static_cast<uint32_t>(entry.in.size()));
  AppendEdges(&buf, entry.out);
  AppendEdges(&buf, entry.in);
  return buf;
}

AdjacencyPtr DecodeAdjacency(std::span<const uint8_t> bytes) {
  if (bytes.size() < 16) {
    return nullptr;
  }
  auto entry = std::make_shared<AdjacencyEntry>();
  entry->node = ReadU32(bytes.data());
  entry->node_label = ReadU16(bytes.data() + 4);
  const uint32_t out_count = ReadU32(bytes.data() + 8);
  const uint32_t in_count = ReadU32(bytes.data() + 12);
  const size_t expected = 16 + 6 * (static_cast<size_t>(out_count) + in_count);
  if (bytes.size() != expected) {
    return nullptr;
  }
  const uint8_t* p = bytes.data() + 16;
  entry->out.resize(out_count);
  for (uint32_t i = 0; i < out_count; ++i, p += 6) {
    entry->out[i] = Edge{ReadU32(p), ReadU16(p + 4)};
  }
  entry->in.resize(in_count);
  for (uint32_t i = 0; i < in_count; ++i, p += 6) {
    entry->in[i] = Edge{ReadU32(p), ReadU16(p + 4)};
  }
  return entry;
}

}  // namespace grouting
