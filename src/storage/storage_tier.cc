#include "src/storage/storage_tier.h"

namespace grouting {

AdjacencyPtr StorageServer::Get(NodeId node) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.get_requests;
  auto blob = store_.Get(node);
  if (!blob.has_value()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.values_served;
  stats_.bytes_served += blob->size();
  return DecodeAdjacency(*blob);
}

StorageTier::StorageTier(size_t num_servers, uint32_t hash_seed) : hasher_(hash_seed) {
  GROUTING_CHECK(num_servers > 0);
  servers_.reserve(num_servers);
  for (size_t i = 0; i < num_servers; ++i) {
    servers_.push_back(std::make_unique<StorageServer>(static_cast<uint32_t>(i)));
  }
}

void StorageTier::LoadGraph(const Graph& g) {
  explicit_placement_.clear();
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto blob = EncodeAdjacency(g, u);
    servers_[ServerOf(u)]->Load(u, blob);
  }
}

void StorageTier::LoadGraph(const Graph& g, const PartitionAssignment& placement) {
  GROUTING_CHECK(placement.size() == g.num_nodes());
  explicit_placement_ = placement;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    GROUTING_CHECK(placement[u] < servers_.size());
    const auto blob = EncodeAdjacency(g, u);
    servers_[placement[u]]->Load(u, blob);
  }
}

uint32_t StorageTier::ServerOf(NodeId node) const {
  if (!explicit_placement_.empty() && node < explicit_placement_.size()) {
    return explicit_placement_[node];
  }
  return hasher_.Place(node, static_cast<uint32_t>(servers_.size()));
}

AdjacencyPtr StorageTier::Get(NodeId node) {
  return servers_[ServerOf(node)]->Get(node);
}

uint64_t StorageTier::TotalLiveBytes() const {
  uint64_t total = 0;
  for (const auto& s : servers_) {
    total += s->store().live_bytes();
  }
  return total;
}

uint64_t StorageTier::TotalValues() const {
  uint64_t total = 0;
  for (const auto& s : servers_) {
    total += s->store().entry_count();
  }
  return total;
}

}  // namespace grouting
