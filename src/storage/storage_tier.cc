#include "src/storage/storage_tier.h"

namespace grouting {

AdjacencyPtr StorageServer::Get(NodeId node) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.get_requests;
  auto blob = store_.Get(node);
  if (!blob.has_value()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.values_served;
  stats_.bytes_served += blob->size();
  return DecodeAdjacency(*blob);
}

std::vector<AdjacencyPtr> StorageServer::MultiGet(std::span<const NodeId> nodes) {
  std::lock_guard<std::mutex> lock(mu_);
  static_assert(sizeof(NodeId) <= sizeof(uint64_t));
  std::vector<uint64_t> keys(nodes.begin(), nodes.end());
  const auto blobs = store_.MultiGet(keys);
  std::vector<AdjacencyPtr> result;
  result.reserve(nodes.size());
  for (const auto& blob : blobs) {
    ++stats_.get_requests;
    if (!blob.has_value()) {
      ++stats_.misses;
      result.push_back(nullptr);
      continue;
    }
    ++stats_.values_served;
    stats_.bytes_served += blob->size();
    result.push_back(DecodeAdjacency(*blob));
  }
  return result;
}

StorageTier::StorageTier(size_t num_servers, uint32_t hash_seed) : hasher_(hash_seed) {
  GROUTING_CHECK(num_servers > 0);
  servers_.reserve(num_servers);
  for (size_t i = 0; i < num_servers; ++i) {
    servers_.push_back(std::make_unique<StorageServer>(static_cast<uint32_t>(i)));
  }
}

void StorageTier::LoadGraph(const Graph& g) {
  explicit_placement_.clear();
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto blob = EncodeAdjacency(g, u);
    servers_[ServerOf(u)]->Load(u, blob);
  }
}

void StorageTier::LoadGraph(const Graph& g, const PartitionAssignment& placement) {
  GROUTING_CHECK(placement.size() == g.num_nodes());
  explicit_placement_ = placement;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    GROUTING_CHECK(placement[u] < servers_.size());
    const auto blob = EncodeAdjacency(g, u);
    servers_[placement[u]]->Load(u, blob);
  }
}

uint32_t StorageTier::ServerOf(NodeId node) const {
  if (!explicit_placement_.empty() && node < explicit_placement_.size()) {
    return explicit_placement_[node];
  }
  return hasher_.Place(node, static_cast<uint32_t>(servers_.size()));
}

AdjacencyPtr StorageTier::Get(NodeId node) {
  return servers_[ServerOf(node)]->Get(node);
}

std::shared_ptr<MultiGetHandle> StorageTier::StartMultiGet(uint32_t server,
                                                           std::vector<NodeId> keys) {
  GROUTING_CHECK(server < servers_.size());
  servers_[server]->NoteBatch();
  return std::make_shared<MultiGetHandle>(servers_[server].get(), std::move(keys));
}

uint64_t StorageTier::TotalLiveBytes() const {
  uint64_t total = 0;
  for (const auto& s : servers_) {
    total += s->store().live_bytes();
  }
  return total;
}

uint64_t StorageTier::TotalValues() const {
  uint64_t total = 0;
  for (const auto& s : servers_) {
    total += s->store().entry_count();
  }
  return total;
}

}  // namespace grouting
