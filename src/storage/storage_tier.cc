#include "src/storage/storage_tier.h"

#include <algorithm>
#include <thread>

namespace grouting {

AdjacencyPtr StorageServer::Get(NodeId node) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.get_requests;
  auto blob = store_.Get(node);
  if (!blob.has_value()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.values_served;
  stats_.bytes_served += blob->size();
  return DecodeAdjacency(*blob, retain_wire_);
}

std::vector<AdjacencyPtr> StorageServer::MultiGet(std::span<const NodeId> nodes) {
  std::lock_guard<std::mutex> lock(mu_);
  static_assert(sizeof(NodeId) <= sizeof(uint64_t));
  std::vector<uint64_t> keys(nodes.begin(), nodes.end());
  const auto blobs = store_.MultiGet(keys);
  std::vector<AdjacencyPtr> result;
  result.reserve(nodes.size());
  for (const auto& blob : blobs) {
    ++stats_.get_requests;
    if (!blob.has_value()) {
      ++stats_.misses;
      result.push_back(nullptr);
      continue;
    }
    ++stats_.values_served;
    stats_.bytes_served += blob->size();
    result.push_back(DecodeAdjacency(*blob, retain_wire_));
  }
  return result;
}

std::optional<std::vector<uint8_t>> StorageServer::PeekBlob(NodeId node) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto blob = store_.Get(node);
  if (!blob.has_value()) {
    return std::nullopt;
  }
  return std::vector<uint8_t>(blob->begin(), blob->end());
}

void StorageServer::DrainOpenBatches() {
  const uint32_t old = epoch_.fetch_add(1, std::memory_order_acq_rel);
  while (open_batches_[old & 1].load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
}

StorageTier::StorageTier(size_t num_servers, uint32_t hash_seed) : hasher_(hash_seed) {
  GROUTING_CHECK(num_servers > 0);
  servers_.reserve(num_servers);
  for (size_t i = 0; i < num_servers; ++i) {
    servers_.push_back(std::make_unique<StorageServer>(static_cast<uint32_t>(i)));
  }
}

void StorageTier::LoadGraph(const Graph& g) {
  explicit_placement_.clear();
  if (partition_map_ != nullptr) {
    partition_keys_.assign(partition_map_->num_partitions(), {});
  }
  const uint64_t stride = g.num_nodes();
  GROUTING_CHECK_MSG(
      static_cast<uint64_t>(num_tenants_) * stride <=
          static_cast<uint64_t>(kInvalidNode),
      "tenant keyspaces overflow the node-id space");
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto blob = EncodeAdjacency(g, u, encoding_);
    // Encoded once, then written into every tenant's keyspace at the offset
    // key u + t * num_nodes — so placement, repartitioning, and replication
    // all operate on global keys with no tenant-specific code below here.
    for (uint32_t t = 0; t < num_tenants_; ++t) {
      const NodeId key =
          static_cast<NodeId>(static_cast<uint64_t>(u) + t * stride);
      logical_bytes_loaded_ += g.AdjacencyBytes(u);
      encoded_bytes_loaded_ += blob.size();
      servers_[ServerOf(key)]->Load(key, blob);
      if (partition_map_ != nullptr) {
        partition_keys_[partition_map_->PartitionOf(key)].push_back(key);
      }
    }
  }
}

void StorageTier::LoadGraphSubset(const Graph& g, std::span<const uint8_t> keep) {
  GROUTING_CHECK(keep.size() == g.num_nodes());
  GROUTING_CHECK_MSG(mutations_enabled(),
                     "LoadGraphSubset requires EnableMutations (the withheld "
                     "nodes can only materialise through ApplyMutation)");
  explicit_placement_.clear();
  if (partition_map_ != nullptr) {
    partition_keys_.assign(partition_map_->num_partitions(), {});
  }
  const uint64_t stride = g.num_nodes();
  GROUTING_CHECK_MSG(
      static_cast<uint64_t>(num_tenants_) * stride <=
          static_cast<uint64_t>(kInvalidNode),
      "tenant keyspaces overflow the node-id space");
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    std::vector<uint8_t> blob;
    if (keep[u] != 0) {
      blob = EncodeAdjacency(g, u, encoding_);
    }
    for (uint32_t t = 0; t < num_tenants_; ++t) {
      const NodeId key =
          static_cast<NodeId>(static_cast<uint64_t>(u) + t * stride);
      // Withheld keys still join their partition's key list: when a later
      // kAddVertex materialises them, migrations and replica fills must
      // move them like any other key (absent keys are skipped by PeekBlob).
      if (partition_map_ != nullptr) {
        partition_keys_[partition_map_->PartitionOf(key)].push_back(key);
      }
      if (keep[u] == 0) {
        continue;
      }
      logical_bytes_loaded_ += g.AdjacencyBytes(u);
      encoded_bytes_loaded_ += blob.size();
      servers_[ServerOf(key)]->Load(key, blob);
    }
  }
}

void StorageTier::LoadGraph(const Graph& g, const PartitionAssignment& placement) {
  GROUTING_CHECK(placement.size() == g.num_nodes());
  GROUTING_CHECK_MSG(partition_map_ == nullptr,
                     "explicit placement is incompatible with repartitioning");
  GROUTING_CHECK_MSG(num_tenants_ == 1,
                     "multi-tenant federation requires hash placement");
  explicit_placement_ = placement;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    GROUTING_CHECK(placement[u] < servers_.size());
    const auto blob = EncodeAdjacency(g, u, encoding_);
    logical_bytes_loaded_ += g.AdjacencyBytes(u);
    encoded_bytes_loaded_ += blob.size();
    servers_[placement[u]]->Load(u, blob);
  }
}

void StorageTier::set_retain_wire(bool retain) {
  retain_wire_ = retain;
  for (auto& s : servers_) {
    s->set_retain_wire(retain);
  }
}

uint32_t StorageTier::ServerOf(NodeId node) const {
  if (!explicit_placement_.empty() && node < explicit_placement_.size()) {
    return explicit_placement_[node];
  }
  if (partition_map_ != nullptr) {
    return partition_map_->OwnerOf(node);
  }
  return hasher_.Place(node, static_cast<uint32_t>(servers_.size()));
}

uint32_t StorageTier::ReadServerOf(NodeId node) {
  if (!replication_on_) {
    return ServerOf(node);
  }
  const uint32_t q = partition_map_->PartitionOf(node);
  const uint32_t owner = PartitionMap::StampOwner(partition_map_->OwnerStamp(q));
  const uint64_t rep = partition_map_->ReplicaStamp(q);
  const uint32_t count = PartitionMap::StampReplicaCount(rep);
  if (count == 0) {
    // Unreplicated partitions still feed the load signal: a server hot with
    // primary-only traffic should lose p2c ties elsewhere.
    read_load_[owner].fetch_add(1, std::memory_order_relaxed);
    return owner;
  }
  uint32_t holders[1 + PartitionMap::kMaxReplicas];
  holders[0] = owner;
  for (uint32_t i = 0; i < count; ++i) {
    holders[1 + i] = PartitionMap::StampReplica(rep, i);
  }
  // Power-of-two-choices: two hash-derived candidates from the holder set,
  // the less-loaded one wins (ties to the lower server id). The read
  // sequence is mixed into the hash so consecutive reads of one scorching
  // key rotate their candidate pair over the whole holder set — a fixed
  // per-key pair would pin a hot key to two servers forever, which loses to
  // plain migration's time-multiplexing. Hash-derived — not RNG — so the
  // sim's single-threaded runs stay deterministic.
  const uint64_t seq = read_seq_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t h = Murmur3Hash64(node ^ (seq * 0x9e3779b97f4a7c15ull), 0x7e2c0a15u);
  uint32_t pick = holders[h % (count + 1)];
  const uint32_t alt = holders[(h >> 16) % (count + 1)];
  if (alt != pick) {
    const uint64_t load_pick = read_load_[pick].load(std::memory_order_relaxed);
    const uint64_t load_alt = read_load_[alt].load(std::memory_order_relaxed);
    if (load_alt < load_pick || (load_alt == load_pick && alt < pick)) {
      pick = alt;
    }
  }
  read_load_[pick].fetch_add(1, std::memory_order_relaxed);
  if (pick != owner) {
    replica_reads_.fetch_add(1, std::memory_order_relaxed);
  }
  return pick;
}

AdjacencyPtr StorageTier::Get(NodeId node) {
  if (partition_monitor_ != nullptr) {
    partition_monitor_->Record(partition_map_->PartitionOf(node));
  }
  AdjacencyPtr value = servers_[ReadServerOf(node)]->Get(node);
  if (value == nullptr && (partition_map_ != nullptr || mutations_enabled())) {
    // Raced a migration/demotion flip — or a concurrent kAddVertex
    // materialising the node. Re-resolve through the current primary until
    // the value lands or BOTH the owner stamp and the node's mutation
    // version prove the miss genuine (same dual-stamp-stable loop as
    // ResolveMigratedMisses in src/proc/): a stable owner stamp alone no
    // longer suffices, because a mutation writes the blob without moving
    // the partition.
    for (;;) {
      const uint64_t stamp =
          partition_map_ != nullptr ? partition_map_->OwnerStampOf(node) : 0;
      const uint64_t version = NodeVersion(node);
      value = PeekCurrent(node);
      if (value != nullptr ||
          ((partition_map_ == nullptr ||
            partition_map_->OwnerStampOf(node) == stamp) &&
           NodeVersion(node) == version)) {
        break;
      }
    }
  }
  return value;
}

AdjacencyPtr StorageTier::PeekCurrent(NodeId node) {
  const auto blob = servers_[ServerOf(node)]->PeekBlob(node);
  if (!blob.has_value()) {
    return nullptr;
  }
  return DecodeAdjacency(*blob, retain_wire_);
}

std::shared_ptr<MultiGetHandle> StorageTier::StartMultiGet(uint32_t server,
                                                           std::vector<NodeId> keys) {
  GROUTING_CHECK(server < servers_.size());
  servers_[server]->NoteBatch();
  if (partition_monitor_ != nullptr) {
    for (const NodeId key : keys) {
      partition_monitor_->Record(partition_map_->PartitionOf(key));
    }
  }
  auto handle = std::make_shared<MultiGetHandle>(servers_[server].get(), std::move(keys));
  if (partition_map_ != nullptr) {
    // Drain accounting: the handle occupies the server's current epoch slot
    // until it is serviced, so a migration can wait for requests that were
    // opened against the old owner.
    handle->set_open_slot(servers_[server]->RegisterOpenBatch());
  }
  return handle;
}

void StorageTier::EnableRepartitioning(uint32_t partitions_per_server) {
  GROUTING_CHECK(partitions_per_server > 0);
  GROUTING_CHECK_MSG(explicit_placement_.empty(),
                     "repartitioning is incompatible with explicit placement");
  const uint32_t num_servers = static_cast<uint32_t>(servers_.size());
  partition_map_ = std::make_unique<PartitionMap>(
      partitions_per_server * num_servers, num_servers, hasher_.seed());
  partition_monitor_ =
      std::make_unique<PartitionMonitor>(partition_map_->num_partitions());
}

void StorageTier::EnableReplication() {
  GROUTING_CHECK_MSG(partition_map_ != nullptr,
                     "EnableReplication requires EnableRepartitioning first");
  replication_on_ = true;
  read_load_ = std::make_unique<std::atomic<uint64_t>[]>(servers_.size());
  for (size_t i = 0; i < servers_.size(); ++i) {
    read_load_[i].store(0, std::memory_order_relaxed);
  }
}

StorageTier::MigrationResult StorageTier::AddReplica(uint32_t partition,
                                                     uint32_t server) {
  // All structural moves and mutations serialise on write_mu_: a mutation
  // can never land mid-copy (and be lost on the destination), and a
  // just-deleted copy can never resurrect a stale blob.
  std::lock_guard<std::mutex> lock(write_mu_);
  return AddReplicaLocked(partition, server);
}

StorageTier::MigrationResult StorageTier::RemoveReplica(uint32_t partition,
                                                        uint32_t server) {
  std::lock_guard<std::mutex> lock(write_mu_);
  return RemoveReplicaLocked(partition, server);
}

StorageTier::MigrationResult StorageTier::MigratePartition(uint32_t partition,
                                                           uint32_t to) {
  std::lock_guard<std::mutex> lock(write_mu_);
  return MigratePartitionLocked(partition, to);
}

StorageTier::MigrationResult StorageTier::AddReplicaLocked(uint32_t partition,
                                                           uint32_t server) {
  GROUTING_CHECK(replication_on_);
  GROUTING_CHECK(partition < partition_map_->num_partitions());
  GROUTING_CHECK(server < servers_.size());
  GROUTING_CHECK_MSG(partition < partition_keys_.size(),
                     "replication requires the graph to be loaded after "
                     "EnableRepartitioning");
  MigrationResult result;
  result.kind = MigrationResult::Kind::kPromote;
  result.partition = partition;
  result.from = partition_map_->owner(partition);
  result.to = server;
  GROUTING_CHECK_MSG(server != result.from,
                     "the primary is not a replica target");
  StorageServer& src = *servers_[result.from];
  StorageServer& dst = *servers_[server];

  // (1) Copy every key of the partition onto the replica while it is still
  // invisible to readers. PeekBlob, not Get: replica fill is not workload
  // traffic.
  for (const NodeId key : partition_keys_[partition]) {
    auto blob = src.PeekBlob(key);
    if (!blob.has_value()) {
      continue;  // not on the primary (deleted); nothing to copy
    }
    dst.Load(key, *blob);
    ++result.keys_moved;
    result.bytes_moved += blob->size();
  }

  // (2) Flip the replica into the map. No drain, no delete: adding a copy
  // cannot invalidate any in-flight read.
  partition_map_->AddReplica(partition, server);
  return result;
}

StorageTier::MigrationResult StorageTier::RemoveReplicaLocked(uint32_t partition,
                                                              uint32_t server) {
  GROUTING_CHECK(replication_on_);
  GROUTING_CHECK(partition < partition_map_->num_partitions());
  GROUTING_CHECK(server < servers_.size());
  MigrationResult result;
  result.kind = MigrationResult::Kind::kDemote;
  result.partition = partition;
  result.from = server;
  result.to = partition_map_->owner(partition);
  GROUTING_CHECK_MSG(server != result.to, "cannot demote the primary");

  // (1) Flip the replica out of the map: new ReadServerOf lookups stop
  // routing here (PartitionMap::RemoveReplica checks membership).
  partition_map_->RemoveReplica(partition, server);

  // (2) Drain multiget handles opened against the replica before the flip
  // — they still find the keys, the copies are not yet deleted.
  StorageServer& rep = *servers_[server];
  rep.DrainOpenBatches();

  // (3) Delete the replica copies. A reader that raced the flip between
  // ReadServerOf and StartMultiGet may miss here; the processor-side
  // healing re-resolves through the primary, which holds every live key.
  for (const NodeId key : partition_keys_[partition]) {
    rep.Delete(key);
    ++result.keys_moved;
  }
  return result;
}

StorageTier::MigrationResult StorageTier::MigratePartitionLocked(uint32_t partition,
                                                                 uint32_t to) {
  GROUTING_CHECK(partition_map_ != nullptr);
  GROUTING_CHECK(partition < partition_map_->num_partitions());
  GROUTING_CHECK(to < servers_.size());
  MigrationResult result;
  result.partition = partition;
  result.from = partition_map_->owner(partition);
  result.to = to;
  if (result.from == to) {
    return result;
  }
  // A migration moves the SINGLE copy of a partition, so any replicas are
  // torn down first (planner rounds never migrate replicated partitions —
  // this path serves direct callers such as the coherence model checker).
  while (partition_map_->replica_count(partition) > 0) {
    RemoveReplicaLocked(
        partition,
        PartitionMap::StampReplica(partition_map_->ReplicaStamp(partition), 0));
  }
  StorageServer& src = *servers_[result.from];
  StorageServer& dst = *servers_[to];

  // (1) Copy: the partition's keys land on the destination while the source
  // copies stay live, so every concurrent lookup finds them somewhere. The
  // key list was built at LoadGraph (membership never changes), so the walk
  // is O(keys in partition) and takes the source mutex per key, never for a
  // whole-server scan.
  GROUTING_CHECK_MSG(partition < partition_keys_.size(),
                     "repartitioning requires the graph to be loaded after "
                     "EnableRepartitioning");
  std::vector<NodeId> moved;
  for (const NodeId key : partition_keys_[partition]) {
    auto blob = src.PeekBlob(key);
    if (!blob.has_value()) {
      continue;  // not on the source (deleted); nothing to move
    }
    dst.Load(key, *blob);
    moved.push_back(key);
    result.bytes_moved += blob->size();
  }

  // (2) Flip: new ServerOf lookups resolve to the destination (which holds
  // the keys since step 1).
  partition_map_->SetOwner(partition, to);

  // (3) Drain: multiget handles opened against the source before the flip
  // finish against the still-present source copies.
  src.DrainOpenBatches();

  // (4) Delete the source copies. A reader that raced the flip between its
  // ServerOf lookup and StartMultiGet lands in the NEW epoch slot and may
  // observe a miss here; the processor-side fallback re-resolves it.
  for (const NodeId key : moved) {
    src.Delete(key);
  }
  result.keys_moved = moved.size();
  return result;
}

void StorageTier::EnableMutations(const Graph& g) {
  universe_graph_ = &g;
  universe_nodes_ = g.num_nodes();
  const uint64_t total = universe_nodes_ * num_tenants_;
  GROUTING_CHECK(total > 0);
  node_version_ = std::make_unique<std::atomic<uint64_t>[]>(total);
  for (uint64_t i = 0; i < total; ++i) {
    node_version_[i].store(0, std::memory_order_relaxed);
  }
}

void StorageTier::WriteVersionedLocked(NodeId key, std::span<const uint8_t> blob) {
  // Publish order: every copy first, version bump LAST. A reader snapshots
  // the version BEFORE fetching, so whatever blob it then reads is at least
  // as new as the snapshot — a cache entry can under-claim its version
  // (spurious refetch) but never over-claim it (stale hit).
  servers_[ServerOf(key)]->Load(key, blob);
  if (replication_on_) {
    const uint32_t q = partition_map_->PartitionOf(key);
    const uint64_t rep = partition_map_->ReplicaStamp(q);
    const uint32_t count = PartitionMap::StampReplicaCount(rep);
    for (uint32_t i = 0; i < count; ++i) {
      servers_[PartitionMap::StampReplica(rep, i)]->Load(key, blob);
    }
  }
  node_version_[key].fetch_add(1, std::memory_order_release);
}

uint64_t StorageTier::MutateEdgeHalfLocked(NodeId key, NodeId other, Label label,
                                           bool insert, bool out) {
  const auto blob = servers_[ServerOf(key)]->PeekBlob(key);
  if (!blob.has_value()) {
    return 0;  // withheld endpoint: the edge lives in the universe graph
  }
  const AdjacencyPtr current = DecodeAdjacency(*blob, /*retain_wire=*/false);
  GROUTING_CHECK(current != nullptr);
  AdjacencyEntry entry = *current;
  entry.wire.reset();
  entry.wire_bytes = 0;
  std::vector<Edge>& list = out ? entry.out : entry.in;
  const auto it = std::find_if(list.begin(), list.end(),
                               [other](const Edge& e) { return e.dst == other; });
  if (insert) {
    if (it != list.end()) {
      return 0;  // idempotent: the edge is already present
    }
    list.push_back(Edge{other, label});
  } else {
    if (it == list.end()) {
      return 0;  // idempotent: nothing to remove
    }
    list.erase(it);
  }
  WriteVersionedLocked(key, EncodeAdjacency(entry, encoding_));
  return 1;
}

uint64_t StorageTier::ApplyMutation(const GraphMutation& m) {
  GROUTING_CHECK_MSG(mutations_enabled(),
                     "ApplyMutation requires EnableMutations first");
  std::lock_guard<std::mutex> lock(write_mu_);
  uint64_t writes = 0;
  // One logical mutation lands in every tenant keyspace — the federation
  // stores per-tenant copies of the same graph, so the copies stay
  // identical under updates.
  for (uint32_t t = 0; t < num_tenants_; ++t) {
    const uint64_t off = static_cast<uint64_t>(t) * universe_nodes_;
    switch (m.kind) {
      case GraphMutation::Kind::kAddVertex: {
        GROUTING_CHECK(m.u < universe_nodes_);
        const auto blob = EncodeAdjacency(*universe_graph_, m.u, encoding_);
        WriteVersionedLocked(static_cast<NodeId>(m.u + off), blob);
        ++writes;
        break;
      }
      case GraphMutation::Kind::kAddEdge:
      case GraphMutation::Kind::kRemoveEdge: {
        GROUTING_CHECK(m.u < universe_nodes_ && m.v < universe_nodes_);
        const bool insert = m.kind == GraphMutation::Kind::kAddEdge;
        writes += MutateEdgeHalfLocked(static_cast<NodeId>(m.u + off), m.v,
                                       m.label, insert, /*out=*/true);
        writes += MutateEdgeHalfLocked(static_cast<NodeId>(m.v + off), m.u,
                                       m.label, insert, /*out=*/false);
        break;
      }
    }
  }
  return writes;
}

std::vector<uint64_t> StorageTier::GetRequestsPerServer() const {
  std::vector<uint64_t> per_server;
  per_server.reserve(servers_.size());
  for (const auto& s : servers_) {
    per_server.push_back(s->stats().get_requests);
  }
  return per_server;
}

uint64_t StorageTier::TotalLiveBytes() const {
  uint64_t total = 0;
  for (const auto& s : servers_) {
    total += s->store().live_bytes();
  }
  return total;
}

uint64_t StorageTier::TotalValues() const {
  uint64_t total = 0;
  for (const auto& s : servers_) {
    total += s->store().entry_count();
  }
  return total;
}

}  // namespace grouting
